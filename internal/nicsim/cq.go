package nicsim

import (
	"sync"
	"sync/atomic"
)

// CQ is a completion queue: a bounded MPSC ring of CQEs. Producers are
// the NIC's receive path (possibly several channels); the consumer is
// one poller — a DPA worker thread in the offloaded configuration
// (§3.4.1 maps each channel's CQ to its own worker).
type CQ struct {
	mu      sync.Mutex
	nonFull *sync.Cond
	buf     []CQE
	cap     int
	head    int
	count   int
	closed  bool
	// Dropped counts completions discarded because the CQ overflowed
	// with Overrun semantics.
	Dropped atomic.Uint64
	// overrun selects behaviour on a full queue: true drops the new
	// CQE (real CQ overrun), false blocks the producer.
	overrun bool
	hasData chan struct{} // 1-buffered wakeup signal for the poller
	// sink, when set, consumes completions synchronously in the
	// producer's call: Push invokes it instead of enqueueing. Virtual-
	// clock deployments use it so packet processing happens inside the
	// delivery event rather than on a free-running poller goroutine.
	// Held in an atomic pointer so the sink fast path in Push costs two
	// atomic loads instead of a mutex round-trip per completion.
	sink atomic.Pointer[func([]CQE)]
	// closedFlag mirrors closed for the lock-free sink path.
	closedFlag atomic.Bool
	// sinkBusy guards sinkScratch, the zero-allocation staging slot the
	// sink fast path hands to the handler. A concurrent second producer
	// (or a reentrant push from inside the handler) loses the CAS and
	// falls back to a heap-boxed single CQE.
	sinkBusy    atomic.Bool
	sinkScratch [1]CQE
	// sinkSerial declares the producers externally serialized (the
	// virtual-clock regime: every delivery runs under the scheduler
	// baton, one at a time), downgrading the scratch claim from an
	// atomic CAS to a plain bool — the CAS was measurable at line rate.
	// serialBusy still catches a reentrant push from inside the handler,
	// which falls back to a boxed CQE.
	sinkSerial bool
	serialBusy bool
}

// NewCQ creates a completion queue with the given capacity. If overrun
// is true, completions that arrive while the queue is full are counted
// in Dropped and discarded, mimicking a real CQ overrun; otherwise the
// producer blocks (convenient for lossless perf harnesses).
func NewCQ(capacity int, overrun bool) *CQ {
	if capacity <= 0 {
		panic("nicsim: CQ capacity must be positive")
	}
	// The ring itself is allocated lazily on the first buffered Push:
	// sink-mode queues (every virtual-clock deployment) never buffer, so
	// eagerly building CQDepth-sized rings per channel would be pure
	// session-construction waste.
	cq := &CQ{cap: capacity, overrun: overrun,
		hasData: make(chan struct{}, 1)}
	cq.nonFull = sync.NewCond(&cq.mu)
	return cq
}

// SetSink switches the queue to synchronous delivery: every subsequent
// Push invokes fn inline (in the producer's goroutine) and nothing is
// buffered, so Poll/Wait see an always-empty queue. Install the sink
// before traffic starts; it cannot be combined with concurrent
// Poll-based consumption.
func (q *CQ) SetSink(fn func(CQE)) {
	q.SetSinkBatch(func(cqes []CQE) {
		for i := range cqes {
			fn(cqes[i])
		}
	})
}

// SetSinkBatch is SetSink for batch handlers: fn observes each
// synchronous delivery as a (usually one-element) slice that is only
// valid for the duration of the call. This is the allocation-free
// spelling — Push stages the CQE in a per-queue scratch slot instead
// of heap-boxing it per completion.
func (q *CQ) SetSinkBatch(fn func([]CQE)) {
	q.sink.Store(&fn)
}

// SetSinkBatchSerial is SetSinkBatch for callers that guarantee
// producers never push concurrently (virtual-clock deployments, where
// each delivery holds the scheduler baton). The scratch handoff then
// needs no atomic claim. The write to sinkSerial is published by the
// atomic sink store, so producers that observe the sink observe the
// mode.
func (q *CQ) SetSinkBatchSerial(fn func([]CQE)) {
	q.sinkSerial = true
	q.sink.Store(&fn)
}

// Push appends a completion (or hands it to the sink).
func (q *CQ) Push(e CQE) {
	if fn := q.sink.Load(); fn != nil {
		if q.closedFlag.Load() {
			return
		}
		switch {
		case q.sinkSerial:
			if !q.serialBusy {
				q.serialBusy = true
				q.sinkScratch[0] = e
				(*fn)(q.sinkScratch[:1])
				q.serialBusy = false
			} else {
				(*fn)([]CQE{e})
			}
		case q.sinkBusy.CompareAndSwap(false, true):
			q.sinkScratch[0] = e
			(*fn)(q.sinkScratch[:1])
			q.sinkBusy.Store(false)
		default:
			(*fn)([]CQE{e})
		}
		return
	}
	q.mu.Lock()
	if q.buf == nil {
		q.buf = make([]CQE, q.cap)
	}
	for q.count == len(q.buf) && !q.closed {
		if q.overrun {
			q.mu.Unlock()
			q.Dropped.Add(1)
			return
		}
		q.nonFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.buf[(q.head+q.count)%len(q.buf)] = e
	q.count++
	q.mu.Unlock()
	select {
	case q.hasData <- struct{}{}:
	default:
	}
}

// Poll pops up to len(dst) completions without blocking and returns
// how many it wrote — the ibv_poll_cq analogue.
func (q *CQ) Poll(dst []CQE) int {
	q.mu.Lock()
	n := q.count
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = q.buf[q.head]
		q.head = (q.head + 1) % len(q.buf)
	}
	q.count -= n
	if n > 0 {
		q.nonFull.Broadcast()
	}
	q.mu.Unlock()
	return n
}

// PollInto drains every pending completion into *dst, growing the
// caller's buffer as needed (its capacity is reused across drains), and
// returns the number appended. One mutex round-trip amortizes over the
// whole backlog, versus one per fixed-size Poll batch — the
// ibv_poll_cq-with-large-batch idiom the DPA workers use.
func (q *CQ) PollInto(dst *[]CQE) int {
	q.mu.Lock()
	n := q.count
	if n == 0 {
		q.mu.Unlock()
		return 0
	}
	base := len(*dst)
	if need := base + n; cap(*dst) < need {
		grown := make([]CQE, base, need)
		copy(grown, *dst)
		*dst = grown
	}
	*dst = (*dst)[:base+n]
	out := (*dst)[base:]
	for i := 0; i < n; i++ {
		out[i] = q.buf[q.head]
		q.head = (q.head + 1) % len(q.buf)
	}
	q.count -= n
	q.nonFull.Broadcast()
	q.mu.Unlock()
	return n
}

// Wait blocks until the queue is non-empty or closed; it returns false
// once the queue is closed and drained.
func (q *CQ) Wait() bool {
	for {
		q.mu.Lock()
		if q.count > 0 {
			q.mu.Unlock()
			return true
		}
		if q.closed {
			q.mu.Unlock()
			return false
		}
		q.mu.Unlock()
		<-q.hasData
	}
}

// Close wakes all waiters; subsequent Pushes are dropped. The wakeup
// channel is deliberately never closed: producers may still race
// against Close (late packets in flight), and sending a token to an
// open channel is always safe.
func (q *CQ) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.closedFlag.Store(true)
	q.nonFull.Broadcast()
	q.mu.Unlock()
	select {
	case q.hasData <- struct{}{}:
	default:
	}
}
