package clock

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealNotifyWakesWaiter(t *testing.T) {
	r := NewReal()
	epoch := r.Epoch()
	go func() {
		time.Sleep(5 * time.Millisecond)
		r.Notify()
	}()
	if !r.WaitNotify(epoch, time.Second) {
		t.Fatal("WaitNotify returned timeout despite Notify")
	}
}

func TestRealWaitNotifyTimesOut(t *testing.T) {
	r := NewReal()
	start := time.Now()
	if r.WaitNotify(r.Epoch(), 5*time.Millisecond) {
		t.Fatal("WaitNotify reported a notification that never happened")
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("WaitNotify returned before its timeout")
	}
}

func TestRealEpochPreventsLostWakeup(t *testing.T) {
	r := NewReal()
	epoch := r.Epoch()
	r.Notify() // notification lands before the wait starts
	if !r.WaitNotify(epoch, -1) {
		t.Fatal("stale epoch must return immediately as notified")
	}
}

func TestVirtualSleepAdvancesVirtualTimeOnly(t *testing.T) {
	v := NewVirtual()
	wallStart := time.Now()
	var elapsed time.Duration
	v.Go(func() {
		start := v.Now()
		v.Sleep(10 * time.Second)
		elapsed = v.Since(start)
	})
	v.Run()
	if elapsed != 10*time.Second {
		t.Fatalf("virtual elapsed = %v, want exactly 10s", elapsed)
	}
	if wall := time.Since(wallStart); wall > 2*time.Second {
		t.Fatalf("10 virtual seconds took %v wall-clock", wall)
	}
}

func TestVirtualActorsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		v := NewVirtual()
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			v.Go(func() {
				for step := 0; step < 3; step++ {
					v.Sleep(time.Duration(i+1) * time.Millisecond)
					trace = append(trace, fmt.Sprintf("a%d@%v", i, v.Elapsed()))
				}
			})
		}
		v.Run()
		return trace
	}
	first := run()
	prev := runtime.GOMAXPROCS(1)
	second := run()
	runtime.GOMAXPROCS(prev)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("traces differ across runs/GOMAXPROCS:\n%v\n%v", first, second)
	}
}

func TestVirtualNotifyWakesBeforeTimeout(t *testing.T) {
	v := NewVirtual()
	var waiterWoke, notified bool
	var wokeAt time.Duration
	v.Go(func() {
		epoch := v.Epoch()
		notified = v.WaitNotify(epoch, time.Hour)
		waiterWoke = true
		wokeAt = v.Elapsed()
	})
	v.Go(func() {
		v.Sleep(3 * time.Millisecond)
		v.Notify()
	})
	v.Run()
	if !waiterWoke || !notified {
		t.Fatalf("woke=%v notified=%v, want notified wake", waiterWoke, notified)
	}
	if wokeAt != 3*time.Millisecond {
		t.Fatalf("woke at %v, want exactly 3ms (virtual)", wokeAt)
	}
}

func TestVirtualWaitNotifyTimeout(t *testing.T) {
	v := NewVirtual()
	var notified bool
	v.Go(func() {
		notified = v.WaitNotify(v.Epoch(), 7*time.Millisecond)
	})
	v.Run()
	if notified {
		t.Fatal("no Notify was issued; wait must time out")
	}
	if v.Elapsed() != 7*time.Millisecond {
		t.Fatalf("clock at %v, want exactly the 7ms timeout", v.Elapsed())
	}
}

func TestVirtualStaleEpochReturnsImmediately(t *testing.T) {
	v := NewVirtual()
	var notified bool
	v.Go(func() {
		epoch := v.Epoch()
		v.Notify()
		notified = v.WaitNotify(epoch, -1) // d<0: would deadlock if lost
	})
	v.Run()
	if !notified {
		t.Fatal("stale epoch must report notified without blocking")
	}
}

func TestVirtualAfterFuncTimer(t *testing.T) {
	v := NewVirtual()
	var fired []time.Duration
	v.Go(func() {
		stopped := v.AfterFunc(5*time.Millisecond, func() {
			fired = append(fired, v.Elapsed())
		})
		reset := v.AfterFunc(2*time.Millisecond, func() {
			fired = append(fired, v.Elapsed())
		})
		if !stopped.Stop() {
			t.Error("Stop on a pending timer must report true")
		}
		if stopped.Stop() {
			t.Error("second Stop must report false")
		}
		if !reset.Reset(8 * time.Millisecond) {
			t.Error("Reset on a pending timer must report true")
		}
		v.Sleep(20 * time.Millisecond)
		if reset.Reset(time.Millisecond) {
			t.Error("Reset after firing must report false")
		}
		v.Sleep(5 * time.Millisecond)
	})
	v.Run()
	if fmt.Sprint(fired) != fmt.Sprint([]time.Duration{8 * time.Millisecond, 21 * time.Millisecond}) {
		t.Fatalf("timer firings = %v", fired)
	}
}

func TestVirtualDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run must panic on a blocked-forever actor")
		}
	}()
	v := NewVirtual()
	v.Go(func() { v.WaitNotify(v.Epoch(), -1) })
	v.Run()
}

func TestVirtualActorsSpawnActors(t *testing.T) {
	v := NewVirtual()
	var count atomic.Int32
	v.Go(func() {
		v.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			v.Go(func() {
				v.Sleep(time.Millisecond)
				count.Add(1)
			})
		}
	})
	v.Run()
	if count.Load() != 3 {
		t.Fatalf("nested actors ran %d times, want 3", count.Load())
	}
	if v.Elapsed() != 2*time.Millisecond {
		t.Fatalf("elapsed %v, want 2ms", v.Elapsed())
	}
}

func TestJoinBothBackends(t *testing.T) {
	for _, clk := range []Clock{NewReal(), NewVirtual()} {
		var a, b bool
		Join(clk, func() { a = true }, func() { b = true })
		if !a || !b {
			t.Fatalf("IsVirtual=%v: Join did not run all fns (a=%v b=%v)",
				clk.IsVirtual(), a, b)
		}
	}
}

func TestOrDefaultsToSharedRealtime(t *testing.T) {
	if Or(nil) != Realtime() {
		t.Fatal("Or(nil) must return the shared realtime clock")
	}
	v := NewVirtual()
	if Or(v) != Clock(v) {
		t.Fatal("Or must pass a non-nil clock through")
	}
}

// fixedEventLog is a stand-in flight recorder for the deadlock
// diagnostic: it answers ActorTail with a canned tail for one actor.
type fixedEventLog struct {
	actor, tail string
}

func (l fixedEventLog) ActorTail(actor string, max int) string {
	if actor == l.actor && max > 0 {
		return l.tail
	}
	return ""
}

func TestVirtualDeadlockDumpsEventLog(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run must panic on a blocked-forever actor")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "stalled-sender") {
			t.Fatalf("diagnostic %q does not name the actor", msg)
		}
		if !strings.Contains(msg, "[recent: retransmit@1ms]") {
			t.Fatalf("diagnostic %q does not carry the actor's telemetry tail", msg)
		}
	}()
	v := NewVirtual()
	v.SetEventLog(fixedEventLog{actor: "stalled-sender", tail: "recent: retransmit@1ms"})
	v.GoNamed("stalled-sender", func() { v.WaitNotify(v.Epoch(), -1) })
	v.Run()
}

func TestVirtualResetDetachesEventLog(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run must panic on a blocked-forever actor")
		}
		if msg := fmt.Sprint(r); strings.Contains(msg, "recent:") {
			t.Fatalf("diagnostic %q leaked the previous cell's event log", msg)
		}
	}()
	v := NewVirtual()
	v.SetEventLog(fixedEventLog{actor: "stalled-sender", tail: "recent: retransmit@1ms"})
	v.Go(func() {})
	v.Run()
	v.Reset()
	v.GoNamed("stalled-sender", func() { v.WaitNotify(v.Epoch(), -1) })
	v.Run()
}
