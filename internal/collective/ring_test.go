package collective

import (
	"math"
	"math/rand"
	"testing"

	"sdrrdma/internal/model"
	"sdrrdma/internal/stats"
	"sdrrdma/internal/wan"
)

func ringChannel(pdrop float64) wan.Params {
	return wan.Params{BandwidthBps: 400e9, DistanceKm: 3750, PDrop: pdrop,
		MTUBytes: 4096, ChunkBytes: 4096}
}

// constScheme returns a fixed per-stage duration, for exact checks.
type constScheme struct{ d float64 }

func (c constScheme) SampleCompletion(*rand.Rand, int64) float64 { return c.d }
func (c constScheme) Name() string                               { return "const" }

func TestRingDeterministicSchedule(t *testing.T) {
	// With constant stage duration d, the ring completes in exactly
	// (2N-2)·d — the Appendix C bound is tight for deterministic t.
	for _, n := range []int{2, 4, 8} {
		r := Ring{N: n, BufferBytes: 128 << 20, Scheme: constScheme{d: 3.5}}
		got := r.Sample(rand.New(rand.NewSource(1)))
		want := float64(2*n-2) * 3.5
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("N=%d: ring time %g, want %g", n, got, want)
		}
		if lb := r.LowerBound(3.5); math.Abs(lb-want) > 1e-9 {
			t.Fatalf("N=%d: lower bound %g, want %g", n, lb, want)
		}
	}
}

func TestRingStageGeometry(t *testing.T) {
	r := Ring{N: 4, BufferBytes: 128 << 20, Scheme: constScheme{1}}
	if r.Stages() != 6 {
		t.Fatalf("Stages = %d, want 6", r.Stages())
	}
	if r.StageBytes() != 32<<20 {
		t.Fatalf("StageBytes = %d, want 32 MiB", r.StageBytes())
	}
	tiny := Ring{N: 4, BufferBytes: 2, Scheme: constScheme{1}}
	if tiny.StageBytes() != 1 {
		t.Fatalf("StageBytes floor = %d, want 1", tiny.StageBytes())
	}
}

func TestRingPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=1 ring did not panic")
		}
	}()
	Ring{N: 1, BufferBytes: 1 << 20, Scheme: constScheme{1}}.Sample(rand.New(rand.NewSource(1)))
}

// Appendix C: the Monte-Carlo mean must respect the analytic lower
// bound (2N−2)·E[t_stage].
func TestRingRespectsLowerBound(t *testing.T) {
	ch := ringChannel(1e-4)
	sr := model.NewSRRTO(ch)
	r := Ring{N: 4, BufferBytes: 128 << 20, Scheme: sr}
	mean := stats.Mean(r.SampleN(800, 5))
	lb := r.LowerBound(sr.MeanCompletion(r.StageBytes()))
	if mean < lb*0.98 { // 2% sampling tolerance
		t.Fatalf("ring mean %g below analytic lower bound %g", mean, lb)
	}
	// The max-coupling across the ring should also keep the mean within
	// a modest factor of the bound (the stages dominate, not the tail).
	if mean > lb*1.6 {
		t.Fatalf("ring mean %g implausibly far above lower bound %g", mean, lb)
	}
}

// Fig 13 shape: EC's p99.9 speedup over SR RTO grows with drop rate
// (3× to >6× across both panels) and holds across datacenter counts.
func TestFig13SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo model sweep: pure single-threaded sampling, skipped in -short (race) runs")
	}
	speedup := func(n int, buf int64, pdrop float64) float64 {
		ch := ringChannel(pdrop)
		srRing := Ring{N: n, BufferBytes: buf, Scheme: model.NewSRRTO(ch)}
		ecRing := Ring{N: n, BufferBytes: buf, Scheme: model.NewMDS(ch)}
		srP := stats.Summarize(srRing.SampleN(3000, 21)).P999
		ecP := stats.Summarize(ecRing.SampleN(3000, 22)).P999
		return srP / ecP
	}
	// left panel: 128 MiB buffer, 4 DCs, rising drop rate
	low := speedup(4, 128<<20, 1e-4)
	high := speedup(4, 128<<20, 1e-2)
	if low < 1.5 {
		t.Errorf("p99.9 ring speedup at 1e-4 = %.2f, want >1.5", low)
	}
	if high < 4 {
		t.Errorf("p99.9 ring speedup at 1e-2 = %.2f, want >4 (paper: up to >6)", high)
	}
	if high <= low {
		t.Errorf("speedup should grow with drop rate: %.2f vs %.2f", low, high)
	}
	// right panel: gains persist across datacenter counts
	if s8 := speedup(8, 128<<20, 1e-3); s8 < 1.8 {
		t.Errorf("p99.9 ring speedup with 8 DCs = %.2f, want >1.8", s8)
	}
}

// Reliability costs compound: with lossy links, the ratio of ring time
// to a single stage grows with N (per Appendix C's (2N-2) factor).
func TestRingCostCompoundsWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo model sweep: pure single-threaded sampling, skipped in -short (race) runs")
	}
	ch := ringChannel(1e-3)
	sr := model.NewSRRTO(ch)
	meanFor := func(n int) float64 {
		r := Ring{N: n, BufferBytes: 128 << 20, Scheme: sr}
		return stats.Mean(r.SampleN(500, 9))
	}
	m2, m8 := meanFor(2), meanFor(8)
	if m8 < m2*2 {
		t.Fatalf("8-DC ring (%g) should cost ≥2x the 2-DC ring (%g)", m8, m2)
	}
}

func BenchmarkRingSample4DC(b *testing.B) {
	ch := ringChannel(1e-3)
	r := Ring{N: 4, BufferBytes: 128 << 20, Scheme: model.NewSRRTO(ch)}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		r.Sample(rng)
	}
}
