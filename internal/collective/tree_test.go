package collective

import (
	"math"
	"math/rand"
	"testing"

	"sdrrdma/internal/model"
	"sdrrdma/internal/stats"
)

func TestTreeRounds(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
	} {
		tr := Tree{N: tc.n}
		if got := tr.Rounds(); got != tc.want {
			t.Fatalf("Rounds(N=%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestTreeDeterministic(t *testing.T) {
	// constant stage duration: completion = rounds · d exactly
	for _, n := range []int{2, 4, 8, 16} {
		tr := Tree{N: n, BufferBytes: 1 << 20, Scheme: constScheme{d: 2.0}}
		got := tr.Sample(rand.New(rand.NewSource(1)))
		want := float64(tr.Rounds()) * 2.0
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("N=%d: tree time %g, want %g", n, got, want)
		}
		if lb := tr.LowerBound(2.0); math.Abs(lb-want) > 1e-9 {
			t.Fatalf("N=%d: lower bound %g, want %g", n, lb, want)
		}
	}
}

func TestTreeAllNodesReached(t *testing.T) {
	// N not a power of two exercises the partial last round.
	for _, n := range []int{3, 5, 6, 7, 9, 13} {
		tr := Tree{N: n, BufferBytes: 1 << 20, Scheme: constScheme{d: 1.0}}
		got := tr.Sample(rand.New(rand.NewSource(2)))
		if got <= 0 || got > float64(tr.Rounds())+1e-9 {
			t.Fatalf("N=%d: completion %g outside (0, rounds]", n, got)
		}
	}
}

func TestTreeRespectsLowerBound(t *testing.T) {
	ch := ringChannel(1e-3)
	sr := model.NewSRRTO(ch)
	tr := Tree{N: 8, BufferBytes: 128 << 20, Scheme: sr}
	mean := stats.Mean(tr.SampleN(600, 5))
	lb := tr.LowerBound(sr.MeanCompletion(tr.BufferBytes))
	if mean < lb*0.98 {
		t.Fatalf("tree mean %g below lower bound %g", mean, lb)
	}
}

// The §5.3 argument extends: EC's per-stage advantage compounds along
// the tree's critical path too.
func TestTreeECSpeedup(t *testing.T) {
	ch := ringChannel(1e-3)
	srTree := Tree{N: 8, BufferBytes: 128 << 20, Scheme: model.NewSRRTO(ch)}
	ecTree := Tree{N: 8, BufferBytes: 128 << 20, Scheme: model.NewMDS(ch)}
	sr := stats.Summarize(srTree.SampleN(2000, 7)).P999
	ecv := stats.Summarize(ecTree.SampleN(2000, 8)).P999
	if sr/ecv < 2 {
		t.Fatalf("tree p99.9 EC speedup = %.2f, want >2 at 1e-3", sr/ecv)
	}
}

// Ring vs tree trade-off: the tree moves the full buffer per stage but
// has only log2 N stages; the ring moves 1/N per stage over 2N-2
// stages. For injection-dominated (huge) buffers the ring's bandwidth
// optimality wins; for RTT-dominated (small) buffers the tree's short
// critical path wins.
func TestRingVsTreeCrossover(t *testing.T) {
	ch := ringChannel(0) // lossless: pure bandwidth/latency comparison
	sr := model.NewSRRTO(ch)
	rng := rand.New(rand.NewSource(1))
	run := func(buf int64) (ringT, treeT float64) {
		ring := Ring{N: 8, BufferBytes: buf, Scheme: sr}
		tree := Tree{N: 8, BufferBytes: buf, Scheme: sr}
		return ring.Sample(rng), tree.Sample(rng)
	}
	ringBig, treeBig := run(64 << 30) // injection-dominated
	if ringBig >= treeBig {
		t.Fatalf("ring (%g) should beat tree (%g) for 64 GiB on 8 nodes", ringBig, treeBig)
	}
	ringSmall, treeSmall := run(1 << 20) // RTT-dominated
	if treeSmall >= ringSmall {
		t.Fatalf("tree (%g) should beat ring (%g) for 1 MiB on 8 nodes", treeSmall, ringSmall)
	}
}

func TestTreePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=1 tree did not panic")
		}
	}()
	Tree{N: 1, BufferBytes: 1, Scheme: constScheme{1}}.Sample(rand.New(rand.NewSource(1)))
}
