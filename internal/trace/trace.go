// Package trace generates the synthetic communication workloads used
// by the experiment harnesses and examples: distributed-training
// traffic patterns (gradient-bucket Allreduce payloads, as motivated
// in §1 and §5.3) and parameter sweeps over message sizes and drop
// rates.
package trace

import (
	"math"
	"math/rand"
)

// Workload is a stream of message sizes (bytes).
type Workload interface {
	// Next returns the next message size.
	Next(rng *rand.Rand) int64
	// Name identifies the workload.
	Name() string
}

// Fixed always returns the same size.
type Fixed struct{ Bytes int64 }

func (f Fixed) Next(*rand.Rand) int64 { return f.Bytes }
func (f Fixed) Name() string          { return "fixed" }

// TrainingBuckets models data-parallel training traffic: gradients are
// flushed in near-constant buckets (PyTorch DDP defaults to 25 MiB) with
// a smaller tail bucket per step. Sizes cycle deterministically per
// step with mild jitter.
type TrainingBuckets struct {
	// BucketBytes is the full bucket size (default 25 MiB).
	BucketBytes int64
	// BucketsPerStep is the number of full buckets per training step.
	BucketsPerStep int
	// TailBytes is the final partial bucket (default BucketBytes/4).
	TailBytes int64

	pos int
}

// NewTrainingBuckets returns the default DDP-style workload.
func NewTrainingBuckets() *TrainingBuckets {
	return &TrainingBuckets{BucketBytes: 25 << 20, BucketsPerStep: 8, TailBytes: 6 << 20}
}

func (t *TrainingBuckets) Name() string { return "training-buckets" }

func (t *TrainingBuckets) Next(rng *rand.Rand) int64 {
	full := t.BucketsPerStep
	if full <= 0 {
		full = 8
	}
	bucket := t.BucketBytes
	if bucket <= 0 {
		bucket = 25 << 20
	}
	tail := t.TailBytes
	if tail <= 0 {
		tail = bucket / 4
	}
	i := t.pos
	t.pos = (t.pos + 1) % (full + 1)
	if i == full {
		return tail
	}
	// ±3% jitter models variable gradient compression/padding
	j := 1 + (rng.Float64()-0.5)*0.06
	return int64(float64(bucket) * j)
}

// LogUniform samples sizes log-uniformly in [Min, Max] — the sweep
// distribution behind the Fig 9 heatmap axes.
type LogUniform struct {
	Min, Max int64
}

func (l LogUniform) Name() string { return "log-uniform" }

func (l LogUniform) Next(rng *rand.Rand) int64 {
	lo, hi := math.Log(float64(l.Min)), math.Log(float64(l.Max))
	return int64(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// DropRateSweep enumerates the paper's drop-rate grid.
func DropRateSweep() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
}

// SizeSweep enumerates the paper's message-size grid (Fig 3a's x-axis
// subset).
func SizeSweep() []int64 {
	return []int64{128 << 10, 2 << 20, 32 << 20, 128 << 20, 512 << 20, 2 << 30, 8 << 30}
}
