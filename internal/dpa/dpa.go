// Package dpa emulates the BlueField-3 Data Path Accelerator used for
// SDR backend offloading (§3.4): a pool of worker threads, each
// polling one completion queue and running the packet-processing
// handler (generation check, per-packet bitmap update, chunk
// coalescing, PCIe write of the host-visible chunk bitmap).
//
// The emulation preserves the structural properties the paper relies
// on: one worker per channel CQ, per-packet work independent of
// payload size (workers touch completions, not payloads), and linear
// scaling with the worker count until the memory system saturates.
package dpa

import (
	"sync"
	"sync/atomic"

	"sdrrdma/internal/nicsim"
)

// Handler processes one completion. Implementations must be
// thread-safe across workers (SDR's bitmap updates are atomic).
type Handler func(cqe *nicsim.CQE)

// batchSize is how many CQEs a worker drains per poll, mirroring the
// DPA's batch completion processing.
const batchSize = 256

// Worker is one emulated DPA hardware thread bound to a CQ.
type Worker struct {
	cq      *nicsim.CQ
	handler Handler
	done    chan struct{}
	// Processed counts completions handled by this worker.
	Processed atomic.Uint64
}

func (w *Worker) run() {
	defer close(w.done)
	var batch [batchSize]nicsim.CQE
	for {
		n := w.cq.Poll(batch[:])
		if n == 0 {
			if !w.cq.Wait() {
				return
			}
			continue
		}
		for i := 0; i < n; i++ {
			w.handler(&batch[i])
		}
		w.Processed.Add(uint64(n))
	}
}

// Pool manages a set of workers, the DPA thread group serving one SDR
// context.
type Pool struct {
	mu      sync.Mutex
	workers []*Worker
	sync    bool
	// PCIeWrites counts host-memory updates performed by handlers
	// (chunk-bitmap writes over PCIe, §3.4.2); handlers increment it.
	PCIeWrites atomic.Uint64
}

// NewPool creates an empty pool.
func NewPool() *Pool { return &Pool{} }

// SetSynchronous switches subsequently spawned workers to synchronous
// mode: instead of a poller goroutine, the worker installs itself as
// the CQ's sink and processes each completion inline in the producer's
// call. Virtual-clock deployments require this — packet processing
// must happen inside the delivery event, not on a free-running
// goroutine the discrete-event scheduler cannot see.
func (p *Pool) SetSynchronous(sync bool) {
	p.mu.Lock()
	p.sync = sync
	p.mu.Unlock()
}

// Spawn starts a worker draining cq with handler and returns it.
func (p *Pool) Spawn(cq *nicsim.CQ, handler Handler) *Worker {
	w := &Worker{cq: cq, handler: handler, done: make(chan struct{})}
	p.mu.Lock()
	p.workers = append(p.workers, w)
	sync := p.sync
	p.mu.Unlock()
	if sync {
		close(w.done) // nothing to join at Stop time
		cq.SetSink(func(cqe nicsim.CQE) {
			w.handler(&cqe)
			w.Processed.Add(1)
		})
		return w
	}
	go w.run()
	return w
}

// Workers returns the current worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Processed sums completions handled across all workers.
func (p *Pool) Processed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, w := range p.workers {
		total += w.Processed.Load()
	}
	return total
}

// Stop closes every worker's CQ and waits for the workers to drain.
func (p *Pool) Stop() {
	p.mu.Lock()
	workers := append([]*Worker(nil), p.workers...)
	p.workers = nil
	p.mu.Unlock()
	for _, w := range workers {
		w.cq.Close()
	}
	for _, w := range workers {
		<-w.done
	}
}
