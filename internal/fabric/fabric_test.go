package fabric

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sdrrdma/internal/clock"
	"sdrrdma/internal/nicsim"
)

// countingQP records delivered packets.
type countingQP struct {
	delivered atomic.Uint64
}

func registerCounter(dev *nicsim.Device) (*countingQP, uint32) {
	// Use a UD QP with posted buffers as a delivery counter.
	cq := nicsim.NewCQ(1<<16, true)
	ud := nicsim.NewUDQP(dev, 4096, cq)
	c := &countingQP{}
	go func() {
		var buf [64]nicsim.CQE
		for cq.Wait() {
			n := cq.Poll(buf[:])
			c.delivered.Add(uint64(n))
		}
	}()
	// Post enough buffers up front: tests send well under this many.
	buf := make([]byte, 64)
	for i := 0; i < 1<<16; i++ {
		ud.PostRecv(buf, uint64(i))
	}
	return c, ud.QPN()
}

func sendN(dir *Direction, dst uint32, n int) {
	for i := 0; i < n; i++ {
		dir.Send(&nicsim.Packet{Opcode: nicsim.OpSend, DstQPN: dst, Payload: []byte("x"),
			First: true, Last: true})
	}
}

func waitCount(t *testing.T, c *countingQP, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for c.delivered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d, want %d", c.delivered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLosslessDirectionDeliversAll(t *testing.T) {
	dev := nicsim.NewDevice("dst")
	c, qpn := registerCounter(dev)
	dir := NewDirection(dev, Config{})
	sendN(dir, qpn, 1000)
	waitCount(t, c, 1000, time.Second)
	if dir.Tx.Load() != 1000 || dir.Dropped.Load() != 0 {
		t.Fatalf("Tx=%d Dropped=%d", dir.Tx.Load(), dir.Dropped.Load())
	}
}

func TestDropRate(t *testing.T) {
	dev := nicsim.NewDevice("dst")
	_, qpn := registerCounter(dev)
	dir := NewDirection(dev, Config{DropProb: 0.3, Seed: 1})
	const n = 20000
	sendN(dir, qpn, n)
	rate := float64(dir.Dropped.Load()) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate = %g, want ≈0.3", rate)
	}
}

func TestDuplication(t *testing.T) {
	dev := nicsim.NewDevice("dst")
	c, qpn := registerCounter(dev)
	dir := NewDirection(dev, Config{DuplicateProb: 1.0, Seed: 2})
	sendN(dir, qpn, 100)
	waitCount(t, c, 200, time.Second)
	if dir.Duplicated.Load() != 100 {
		t.Fatalf("Duplicated = %d", dir.Duplicated.Load())
	}
}

func TestLatencyDelays(t *testing.T) {
	dev := nicsim.NewDevice("dst")
	c, qpn := registerCounter(dev)
	dir := NewDirection(dev, Config{Latency: 20 * time.Millisecond})
	start := time.Now()
	sendN(dir, qpn, 1)
	waitCount(t, c, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivery after %v, want ≥20ms", elapsed)
	}
}

func TestInterceptorDropAndHold(t *testing.T) {
	dev := nicsim.NewDevice("dst")
	c, qpn := registerCounter(dev)
	dir := NewDirection(dev, Config{})
	i := 0
	dir.SetInterceptor(func(p *nicsim.Packet) Verdict {
		i++
		switch {
		case i == 1:
			return Drop
		case i == 2:
			return Hold
		default:
			return Pass
		}
	})
	sendN(dir, qpn, 3)
	waitCount(t, c, 1, time.Second) // only the third passed
	if dir.Dropped.Load() != 1 || dir.HeldCount.Load() != 1 {
		t.Fatalf("Dropped=%d Held=%d", dir.Dropped.Load(), dir.HeldCount.Load())
	}
	if n := dir.ReleaseHeld(); n != 1 {
		t.Fatalf("ReleaseHeld = %d", n)
	}
	waitCount(t, c, 2, time.Second)
	if n := dir.ReleaseHeld(); n != 0 {
		t.Fatalf("second ReleaseHeld = %d", n)
	}
	dir.SetInterceptor(nil) // clearing must not panic
	sendN(dir, qpn, 1)
	waitCount(t, c, 3, time.Second)
}

func TestOOBReliableOrdered(t *testing.T) {
	oob := NewOOB(nil, 0)
	var got []byte
	oob.HandleB(func(msg []byte) { got = append(got, msg...) })
	oob.SendToB([]byte("a"))
	oob.SendToB([]byte("b"))
	oob.SendToB([]byte("c"))
	if string(got) != "abc" {
		t.Fatalf("OOB order = %q", got)
	}
}

func TestOOBBacklogBeforeHandler(t *testing.T) {
	oob := NewOOB(nil, 0)
	oob.SendToA([]byte("early"))
	var got string
	oob.HandleA(func(msg []byte) { got = string(msg) })
	if got != "early" {
		t.Fatalf("backlogged OOB message = %q", got)
	}
}

func TestOOBLatency(t *testing.T) {
	oob := NewOOB(nil, 10*time.Millisecond)
	done := make(chan time.Time, 1)
	oob.HandleB(func([]byte) { done <- time.Now() })
	start := time.Now()
	oob.SendToB([]byte("x"))
	select {
	case at := <-done:
		if at.Sub(start) < 8*time.Millisecond {
			t.Fatalf("OOB delivered after %v, want ≥10ms", at.Sub(start))
		}
	case <-time.After(time.Second):
		t.Fatal("OOB message never delivered")
	}
}

// traceSink records (virtual time, immediate) delivery events through a
// UD QP whose CQ is in synchronous sink mode, so the trace is exact on
// the virtual clock.
type traceSink struct {
	dev  *nicsim.Device
	qpn  uint32
	rows []string
}

func newTraceSink(vc *clock.Virtual) *traceSink {
	ts := &traceSink{dev: nicsim.NewDevice("sink")}
	cq := nicsim.NewCQ(1<<16, true)
	ud := nicsim.NewUDQP(ts.dev, 4096, cq)
	buf := make([]byte, 64)
	for i := 0; i < 1<<12; i++ {
		ud.PostRecv(buf, uint64(i))
	}
	cq.SetSink(func(cqe nicsim.CQE) {
		ts.rows = append(ts.rows, fmt.Sprintf("%v:%d", vc.Elapsed(), cqe.Imm))
	})
	ts.qpn = ud.QPN()
	return ts
}

// Sends through drop+duplicate+reorder impairments on the virtual
// clock must yield the exact same delivery trace — instants and order —
// for a fixed seed, on every run and GOMAXPROCS setting.
func TestVirtualImpairmentsDeterministicTrace(t *testing.T) {
	run := func() []string {
		vc := clock.NewVirtual()
		ts := newTraceSink(vc)
		dir := NewDirection(ts.dev, Config{
			Latency:       5 * time.Millisecond,
			DropProb:      0.2,
			DuplicateProb: 0.1,
			ReorderProb:   0.3,
			ReorderExtra:  7 * time.Millisecond,
			Seed:          9,
			Clock:         vc,
		})
		vc.Go(func() {
			for i := 0; i < 400; i++ {
				dir.Send(&nicsim.Packet{Opcode: nicsim.OpSend, DstQPN: ts.qpn,
					Imm: uint32(i), HasImm: true, First: true, Last: true,
					Payload: []byte("payload")})
				vc.Sleep(100 * time.Microsecond)
			}
			vc.Sleep(50 * time.Millisecond) // let stragglers land
		})
		vc.Run()
		if dir.Dropped.Load() == 0 || dir.Duplicated.Load() == 0 {
			t.Fatalf("impairments idle: dropped=%d duplicated=%d",
				dir.Dropped.Load(), dir.Duplicated.Load())
		}
		return ts.rows
	}
	first := run()
	prev := runtime.GOMAXPROCS(1)
	second := run()
	runtime.GOMAXPROCS(prev)
	if len(first) == 0 {
		t.Fatal("no deliveries recorded")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatal("same seed produced different delivery traces")
	}
}

// Interceptor Hold/ReleaseHeld must work identically on the virtual
// clock: the held packet arrives exactly when released — the "late
// packet" generator for §3.3 tests.
func TestInterceptorHoldReleaseVirtual(t *testing.T) {
	vc := clock.NewVirtual()
	ts := newTraceSink(vc)
	dir := NewDirection(ts.dev, Config{Latency: time.Millisecond, Clock: vc})
	held := 0
	dir.SetInterceptor(func(p *nicsim.Packet) Verdict {
		if p.Imm == 1 && held == 0 {
			held++
			return Hold
		}
		return Pass
	})
	vc.Go(func() {
		for i := 0; i < 3; i++ {
			dir.Send(&nicsim.Packet{Opcode: nicsim.OpSend, DstQPN: ts.qpn,
				Imm: uint32(i), HasImm: true, First: true, Last: true})
		}
		vc.Sleep(30 * time.Millisecond)
		if n := dir.ReleaseHeld(); n != 1 {
			t.Errorf("ReleaseHeld = %d, want 1", n)
		}
	})
	vc.Run()
	want := []string{"1ms:0", "1ms:2", "30ms:1"}
	if fmt.Sprint(ts.rows) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", ts.rows, want)
	}
	if dir.HeldCount.Load() != 1 {
		t.Fatalf("HeldCount = %d", dir.HeldCount.Load())
	}
}

// Bandwidth serialization on the virtual clock is exact: each packet
// occupies the wire for its transmission time before propagating.
func TestBandwidthSerializationVirtual(t *testing.T) {
	vc := clock.NewVirtual()
	ts := newTraceSink(vc)
	// 1000 B frames (936 payload + 64 header) at 1 Mbit/s: 8 ms of
	// wire time each, plus 10 ms propagation.
	dir := NewDirection(ts.dev, Config{
		Latency:      10 * time.Millisecond,
		BandwidthBps: 1e6,
		Clock:        vc,
	})
	vc.Go(func() {
		payload := make([]byte, 936)
		for i := 0; i < 2; i++ {
			dir.Send(&nicsim.Packet{Opcode: nicsim.OpSend, DstQPN: ts.qpn,
				Imm: uint32(i), HasImm: true, First: true, Last: true,
				Payload: payload})
		}
		vc.Sleep(100 * time.Millisecond)
	})
	vc.Run()
	want := []string{"18ms:0", "26ms:1"}
	if fmt.Sprint(ts.rows) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", ts.rows, want)
	}
}

// The OOB channel is documented "reliable, ordered": a burst of delayed
// sends must arrive strictly in order even on the real clock, where the
// old AfterFunc-per-message dispatch let concurrent timer callbacks
// overtake each other (the reorder hole this regression pins down).
func TestOOBFIFOUnderLoadRealClock(t *testing.T) {
	oob := NewOOB(nil, 50*time.Microsecond)
	const n = 2000
	done := make(chan int, 1)
	next := 0
	oob.HandleB(func(msg []byte) {
		got := int(msg[0])<<8 | int(msg[1])
		if got != next {
			t.Errorf("OOB reordered: got %d, want %d", got, next)
		}
		next++
		if next == n {
			done <- n
		}
	})
	for i := 0; i < n; i++ {
		oob.SendToB([]byte{byte(i >> 8), byte(i)})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("OOB delivered %d/%d messages", next, n)
	}
}

// Same FIFO contract on the virtual clock, including messages queued
// behind a not-yet-registered handler.
func TestOOBFIFOVirtual(t *testing.T) {
	vc := clock.NewVirtual()
	oob := NewOOB(vc, 3*time.Millisecond)
	var got []byte
	vc.Go(func() {
		oob.SendToB([]byte{0}) // in flight before the handler exists
		vc.Sleep(10 * time.Millisecond)
		oob.HandleB(func(msg []byte) { got = append(got, msg[0]) })
		for i := byte(1); i <= 5; i++ {
			oob.SendToB([]byte{i})
		}
		vc.Sleep(10 * time.Millisecond)
	})
	vc.Run()
	if fmt.Sprint(got) != fmt.Sprint([]byte{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("OOB virtual order = %v", got)
	}
}

func TestSymmetricLinkSeeds(t *testing.T) {
	a, b := nicsim.NewDevice("a"), nicsim.NewDevice("b")
	l := Symmetric(a, b, Config{DropProb: 0.5, Seed: 42})
	if l.AB.cfg.Seed == l.BA.cfg.Seed {
		t.Fatal("symmetric link directions share a seed")
	}
}
