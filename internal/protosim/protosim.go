// Package protosim is a chunk-level discrete-event simulator for the
// reliability protocols of §4, complementing the closed-form model in
// internal/model (the paper's contribution #4: "a framework to
// simulate and analyze the performance of SDR-based reliability
// algorithms").
//
// Unlike the closed-form model, the simulator captures effects the
// Appendix A analysis idealizes away: retransmissions serialize with
// new traffic on the shared link, ACKs can be lost and carry delay,
// and Go-Back-N's window restart amplifies a single loss. It runs in
// virtual time on internal/simnet, so a 25 ms-RTT cross-continent
// transfer simulates in microseconds.
//
// Supported schemes: "sr" (per-chunk RTO), "sr-nack" (receiver-driven
// 1-RTT recovery), "gbn" (classic Go-Back-N, the commodity-ASIC
// baseline of §2.2), and "ec" (erasure coding with SR fallback).
//
// # Performance architecture
//
// The simulators are built for planetary-scale Monte Carlo campaigns
// (GiB messages ⇒ tens of thousands of chunks, hundreds of samples per
// table cell), so the hot path is allocation free and all per-event
// state transitions are O(1):
//
//   - Events are typed (kind, chunk, aux) records dispatched through
//     simnet's slab-backed engine — no closure allocation per event.
//   - Receiver delivery state lives in internal/bitmap, whose
//     monotonic scan hint makes the SR-NACK receive-frontier cursor
//     O(1) amortized (previously an O(n²) rescan of [0, gap)).
//   - EC recoverability is tracked incrementally: per-submessage
//     missing-data and delivered-parity counters plus a global
//     remaining-unrecoverable count replace the former all-submessage
//     rescan (and per-call group-loss allocation) on every delivery.
//   - Dead timers (per-chunk RTO backstops disarmed by ACKs or by a
//     submessage becoming recoverable, GBN's window timer at
//     completion) are cancelled in O(1) instead of draining through
//     the heap, and each sample stops stepping the engine the moment
//     completion is known.
//
// One runner (engine + per-scheme state) is reused across the samples
// of a campaign, so steady-state sampling allocates nothing. Sample
// fans the campaign out across GOMAXPROCS with per-sample derived
// seeds; its output is bit-identical regardless of core count.
package protosim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"sdrrdma/internal/bitmap"
	"sdrrdma/internal/simnet"
	"sdrrdma/internal/wan"
)

// Config parameterizes one protocol simulation.
type Config struct {
	// Ch supplies bandwidth, RTT and the per-chunk drop probability.
	Ch wan.Params
	// Scheme is "sr", "sr-nack", "gbn" or "ec".
	Scheme string
	// RTOFactor sets RTO = RTOFactor·RTT (default 3; sr-nack uses the
	// NACK path for recovery and keeps RTO as a backstop).
	RTOFactor float64
	// AckLossProb drops acknowledgments (and NACKs) independently —
	// the control path rides the same lossy channel (§4.1).
	AckLossProb float64
	// K, M and Code configure the erasure code for "ec"
	// (default 32, 8, "mds").
	K, M int
	Code string
	// Beta is the EC fallback-timeout slack (§4.2.3; default 1).
	Beta float64
	// MaxEvents bounds the engine events one sample may fire. A
	// divergent configuration — e.g. Go-Back-N whose window timer
	// expires before a chunk can even serialize, resending forever —
	// would otherwise loop in virtual time without ever draining the
	// queue; the budget turns that into ErrEventBudget. Zero derives a
	// generous default from the chunk count (far above what any
	// converging run uses).
	MaxEvents int64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	c.Ch = c.Ch.WithDefaults()
	if c.Scheme == "" {
		c.Scheme = "sr"
	}
	if c.RTOFactor == 0 {
		c.RTOFactor = 3
	}
	if c.K == 0 {
		c.K = 32
	}
	if c.M == 0 {
		c.M = 8
	}
	if c.Code == "" {
		c.Code = "mds"
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	return c
}

// ErrEventBudget is wrapped by errors reported when a sample exhausts
// its event budget — the diagnosable form of a divergent configuration
// that would otherwise simulate forever.
var ErrEventBudget = errors.New("protosim: event budget exhausted")

// eventBudget returns the effective per-sample event cap.
func eventBudget(cfg Config, nchunks int) int64 {
	if cfg.MaxEvents > 0 {
		return cfg.MaxEvents
	}
	// ~5 events per chunk per delivery round, and heavy-loss GBN can
	// resend its window per drop: 10k·chunks (plus slack for tiny
	// messages) is orders of magnitude above any converging campaign.
	return 100_000 + 10_000*int64(nchunks)
}

// validate rejects unknown schemes/codes and configurations known to
// diverge. cfg must already have defaults applied.
func validate(cfg Config) error {
	switch cfg.Scheme {
	case "sr", "sr-nack":
	case "gbn":
		// Real protocol property, not a simulator artifact: if the
		// window timer expires before a chunk finishes serializing, the
		// sender restarts the window forever and never completes. Catch
		// it at config time instead of burning the event budget.
		if rto := cfg.RTOFactor * cfg.Ch.RTT(); rto <= cfg.Ch.ChunkInjectionTime() {
			return fmt.Errorf(
				"protosim: gbn diverges: RTO %.3gs (RTOFactor %g · RTT %.3gs) ≤ chunk injection time %.3gs — raise RTOFactor, shrink chunks or widen the link",
				rto, cfg.RTOFactor, cfg.Ch.RTT(), cfg.Ch.ChunkInjectionTime())
		}
	case "ec":
		if cfg.Code != "mds" && cfg.Code != "xor" {
			return fmt.Errorf("protosim: unknown code %q", cfg.Code)
		}
	default:
		return fmt.Errorf("protosim: unknown scheme %q", cfg.Scheme)
	}
	return nil
}

// Simulate returns one sample of the sender-side completion time for a
// message of msgBytes, in seconds of virtual time. Completion is
// reported by an explicit done flag, so a legitimate completion at
// virtual time 0 (degenerate zero-latency configs) is not confused
// with "never finished"; if the event queue drains without the
// transfer completing, Simulate returns +Inf. A config whose event
// queue never drains — e.g. Go-Back-N with RTO < T_inj, whose window
// timer keeps firing and resending before the first chunk finishes
// serializing — is rejected up front by the config sanity check when
// the divergence is predictable, and otherwise stopped by the
// per-sample event budget with an error wrapping ErrEventBudget.
func Simulate(cfg Config, rng *rand.Rand, msgBytes int64) (float64, error) {
	cfg = cfg.WithDefaults()
	if err := validate(cfg); err != nil {
		return 0, err
	}
	return newRunner().simulate(cfg, rng, msgBytes)
}

// Sample draws n completion times with a deterministic seed. The
// campaign fans out across GOMAXPROCS workers, each owning a reusable
// engine; sample i always draws from its own rng seeded by a splitmix64
// mix of (seed, i), so the returned slice is bit-identical regardless
// of core count or work distribution.
func Sample(cfg Config, msgBytes int64, n int, seed int64) ([]float64, error) {
	cfg = cfg.WithDefaults()
	if err := validate(cfg); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	body := func(r *runner) {
		for firstErr.Load() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			r.rng.Seed(sampleSeed(seed, i))
			v, err := r.simulate(cfg, r.rng, msgBytes)
			if err != nil {
				err = fmt.Errorf("sample %d: %w", i, err)
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			out[i] = v
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(newRunner())
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body(newRunner())
			}()
		}
		wg.Wait()
	}
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	return out, nil
}

// sampleSeed derives a per-sample rng seed from (seed, i)
// (simnet.SplitMix64, shared with clock.Lanes' per-cell seeds) so
// neighbouring samples get decorrelated streams and the derivation is
// independent of which worker runs the sample.
func sampleSeed(seed int64, i int) int64 { return simnet.SplitMix64(seed, i) }

// runner bundles a reusable engine with per-scheme simulator state so
// one warm-up serves a whole campaign.
type runner struct {
	eng *simnet.Engine
	rng *rand.Rand // reseeded per sample on the Sample path
	sr  srSim
	gbn gbnSim
	ec  ecSim
}

func newRunner() *runner {
	r := &runner{eng: simnet.New(), rng: rand.New(rand.NewSource(1))}
	r.eng.Lanes(int(numLanes))
	return r
}

// simulate runs one sample. cfg must already be defaulted and
// validated (Simulate and Sample both do this once, not per sample);
// each scheme's run() leaves the engine Reset, so samples chain with
// no per-sample prologue.
func (r *runner) simulate(cfg Config, rng *rand.Rand, msgBytes int64) (float64, error) {
	nchunks := cfg.Ch.ChunksIn(msgBytes)
	switch cfg.Scheme {
	case "sr":
		return r.sr.run(r.eng, cfg, rng, nchunks, false)
	case "sr-nack":
		return r.sr.run(r.eng, cfg, rng, nchunks, true)
	case "gbn":
		return r.gbn.run(r.eng, cfg, rng, nchunks)
	default: // "ec" — validate guarantees no other value reaches here
		return r.ec.run(r.eng, cfg, rng, nchunks)
	}
}

// drive steps the engine until *done, the queue drains, or the budget
// runs out, returning the diagnosable budget error in the last case.
// The engine is Reset on exit either way, so the runner stays reusable.
func drive(eng *simnet.Engine, done *bool, budget int64, scheme string) error {
	var steps int64
	for !*done && eng.Step() {
		if steps++; steps >= budget && !*done {
			now, pending := eng.Now(), eng.Pending()
			eng.Reset()
			return fmt.Errorf("%w: %s fired %d events without completing (t=%.3gs, %d events still queued) — likely divergent (e.g. RTO below injection time)",
				ErrEventBudget, scheme, steps, now, pending)
		}
	}
	eng.Reset() // drop post-completion backstops without draining them
	return nil
}

// reuse returns s resized to n with all elements zeroed, keeping the
// backing array when capacity allows.
func reuse[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// reuseBitmap returns a cleared bitmap of n bits, recycling b when the
// size matches (the common case: every sample of a campaign shares one
// geometry).
func reuseBitmap(b *bitmap.Bitmap, n int) *bitmap.Bitmap {
	if b == nil || b.Len() != n {
		return bitmap.New(n)
	}
	b.Reset()
	return b
}

// Monotone FIFO lanes (see simnet.ScheduleLane): every hot event class
// is scheduled at now+const, so per class the timestamps are
// nondecreasing and the O(log n) heap is bypassed. laneTx carries
// link-serialized transmit completions, laneNet the +half-RTT
// deliveries and control-path (ACK/NACK) arrivals, laneRTO the
// +RTO backstops that are armed thousands of times and almost always
// cancelled.
const (
	laneTx int32 = iota
	laneNet
	laneRTO
	numLanes
)

// link serializes transmissions onto the shared sender uplink: a chunk
// occupies the wire for tinj starting no earlier than the link is
// free. Retransmissions therefore compete with first transmissions —
// the effect the Appendix A "case 2" caveat describes.
type link struct {
	eng    *simnet.Engine
	tinj   float64
	freeAt float64
}

// transmit schedules a (kind, a, b) event at the instant the chunk
// finishes serializing.
func (l *link) transmit(kind, a, b int32) {
	start := l.eng.Now()
	if l.freeAt > start {
		start = l.freeAt
	}
	done := start + l.tinj
	l.freeAt = done
	l.eng.ScheduleLane(laneTx, done, kind, a, b)
}

// --- Selective Repeat (with optional NACK) --------------------------------

// srSim event kinds; a carries the chunk index (srNackArrive: the
// in-flight NACK-list slot).
const (
	srTx int32 = iota
	srDeliver
	srAck
	srRTO
	srNackArrive
)

// srSim runs Selective Repeat. The receiver ACKs each delivered chunk
// (selectively); in NACK mode a delivery whose chunk index exceeds the
// receive frontier NACKs the gap immediately, giving ~1-RTT recovery.
type srSim struct {
	eng     *simnet.Engine
	rng     *rand.Rand
	link    link
	nack    bool
	nchunks int

	half, rto      float64
	pdrop, ackLoss float64

	delivered *bitmap.Bitmap // receiver state
	acked     *bitmap.Bitmap // sender state; Count/Full are O(1)
	nacked    []bool         // chunk has an in-flight NACK request
	rtoTimer  []simnet.Timer // per-chunk backstop, disarmed by the ACK

	// pooled per-NACK snapshot lists (multiple NACKs can be in flight)
	nackLists [][]int32
	nackFree  []int32
	scratch   []int

	done   bool
	doneAt float64
}

func (s *srSim) run(eng *simnet.Engine, cfg Config, rng *rand.Rand, nchunks int, nack bool) (float64, error) {
	s.eng, s.rng, s.nack, s.nchunks = eng, rng, nack, nchunks
	s.link = link{eng: eng, tinj: cfg.Ch.ChunkInjectionTime()}
	s.half = cfg.Ch.RTT() / 2
	s.rto = cfg.RTOFactor * cfg.Ch.RTT()
	s.pdrop = cfg.Ch.PDrop
	s.ackLoss = cfg.AckLossProb
	s.delivered = reuseBitmap(s.delivered, nchunks)
	s.acked = reuseBitmap(s.acked, nchunks)
	s.nacked = reuse(s.nacked, nchunks)
	s.rtoTimer = reuse(s.rtoTimer, nchunks)
	s.nackFree = s.nackFree[:0]
	for i := range s.nackLists {
		s.nackLists[i] = s.nackLists[i][:0]
		s.nackFree = append(s.nackFree, int32(i))
	}
	s.done, s.doneAt = false, 0

	eng.SetHandler(s)
	for i := 0; i < nchunks; i++ {
		s.send(int32(i))
	}
	scheme := "sr"
	if nack {
		scheme = "sr-nack"
	}
	if err := drive(eng, &s.done, eventBudget(cfg, nchunks), scheme); err != nil {
		return 0, err
	}
	if !s.done {
		return math.Inf(1), nil
	}
	return s.doneAt, nil
}

func (s *srSim) send(i int32) { s.link.transmit(srTx, i, 0) }

func (s *srSim) HandleEvent(kind, a, b int32) {
	if s.done {
		return
	}
	switch kind {
	case srTx:
		// chunk finished serializing: (re)arm the per-chunk RTO backstop
		s.rtoTimer[a].Cancel()
		s.rtoTimer[a] = s.eng.ScheduleLaneAfter(laneRTO, s.rto, srRTO, a, 0)
		if s.rng.Float64() < s.pdrop {
			return // chunk lost in transit
		}
		s.eng.ScheduleLaneAfter(laneNet, s.half, srDeliver, a, 0)
	case srDeliver:
		s.delivered.Set(int(a))
		if s.rng.Float64() >= s.ackLoss {
			s.eng.ScheduleLaneAfter(laneNet, s.half, srAck, a, 0)
		}
		if s.nack && a > 0 {
			s.sendNack(int(a))
		}
	case srAck:
		if s.acked.Set(int(a)) {
			s.rtoTimer[a].Cancel()
			if s.acked.Full() {
				s.done, s.doneAt = true, s.eng.Now()
			}
		}
	case srRTO:
		if !s.acked.Test(int(a)) {
			s.send(a)
		}
	case srNackArrive:
		list := s.nackLists[a]
		for _, j := range list {
			s.nacked[j] = false
			if !s.acked.Test(int(j)) {
				s.send(j)
			}
		}
		s.nackLists[a] = list[:0]
		s.nackFree = append(s.nackFree, a)
	}
}

// sendNack requests every undelivered, not-yet-NACKed chunk below
// gapEnd. The scan starts at the receive frontier (the cumulative
// delivery prefix, O(1) amortized via the bitmap's monotonic hint)
// instead of rescanning [0, gapEnd) — the fix for the former O(n²)
// behaviour on long transfers.
func (s *srSim) sendNack(gapEnd int) {
	if s.rng.Float64() < s.ackLoss {
		return
	}
	frontier := s.delivered.CumulativeCount()
	if frontier >= gapEnd {
		return
	}
	s.scratch = s.delivered.Missing(s.scratch[:0], frontier, gapEnd)
	li := int32(-1)
	var list []int32
	for _, j := range s.scratch {
		if s.nacked[j] {
			continue
		}
		s.nacked[j] = true
		if li < 0 {
			li = s.allocNackList()
			list = s.nackLists[li]
		}
		list = append(list, int32(j))
	}
	if li < 0 {
		return
	}
	s.nackLists[li] = list
	s.eng.ScheduleLaneAfter(laneNet, s.half, srNackArrive, li, 0)
}

func (s *srSim) allocNackList() int32 {
	if n := len(s.nackFree); n > 0 {
		li := s.nackFree[n-1]
		s.nackFree = s.nackFree[:n-1]
		return li
	}
	s.nackLists = append(s.nackLists, nil)
	return int32(len(s.nackLists) - 1)
}

// --- Go-Back-N ------------------------------------------------------------

// gbnSim event kinds; a carries the chunk index (gbnAck: the
// cumulative-ACK value).
const (
	gbnTx int32 = iota
	gbnDeliver
	gbnAck
	gbnTimeout
)

// gbnSim runs classic Go-Back-N: the receiver only accepts the next
// in-order chunk and cumulative-ACKs; on timeout of the oldest unacked
// chunk the sender resends the whole outstanding window. This is the
// commodity-NIC baseline SDR's SR is provably no worse than (§4, [7]).
type gbnSim struct {
	eng  *simnet.Engine
	rng  *rand.Rand
	link link

	half, rto      float64
	pdrop, ackLoss float64

	nchunks  int
	expected int // receiver's next in-order chunk
	base     int // sender's first unacked chunk
	sent     int // next never-sent chunk
	window   int

	timer      simnet.Timer
	timerArmed bool

	done   bool
	doneAt float64
}

func (s *gbnSim) run(eng *simnet.Engine, cfg Config, rng *rand.Rand, nchunks int) (float64, error) {
	s.eng, s.rng, s.nchunks = eng, rng, nchunks
	s.link = link{eng: eng, tinj: cfg.Ch.ChunkInjectionTime()}
	s.half = cfg.Ch.RTT() / 2
	s.rto = cfg.RTOFactor * cfg.Ch.RTT()
	s.pdrop = cfg.Ch.PDrop
	s.ackLoss = cfg.AckLossProb
	s.expected, s.base, s.sent = 0, 0, 0
	// window: allow a full BDP of chunks outstanding (plus slack) so
	// the pipe stays full, like a tuned RC QP.
	s.window = int(cfg.Ch.BDPBytes()/float64(cfg.Ch.ChunkBytes))*2 + 16
	s.timer, s.timerArmed = simnet.Timer{}, false
	s.done, s.doneAt = false, 0

	eng.SetHandler(s)
	s.pump()
	s.armTimer()
	if err := drive(eng, &s.done, eventBudget(cfg, nchunks), "gbn"); err != nil {
		return 0, err
	}
	if !s.done {
		return math.Inf(1), nil
	}
	return s.doneAt, nil
}

func (s *gbnSim) armTimer() {
	if s.timerArmed {
		s.timer.Cancel()
	}
	s.timerArmed = true
	s.timer = s.eng.ScheduleLaneAfter(laneRTO, s.rto, gbnTimeout, 0, 0)
}

func (s *gbnSim) pump() {
	for s.sent < s.nchunks && s.sent-s.base < s.window {
		s.link.transmit(gbnTx, int32(s.sent), 0)
		s.sent++
	}
}

func (s *gbnSim) HandleEvent(kind, a, b int32) {
	if s.done {
		// base >= nchunks: completion already cancelled the window
		// timer; any event still in flight is stale and must not touch
		// sender state.
		return
	}
	switch kind {
	case gbnTx:
		if s.rng.Float64() < s.pdrop {
			return
		}
		s.eng.ScheduleLaneAfter(laneNet, s.half, gbnDeliver, a, 0)
	case gbnDeliver:
		if int(a) == s.expected {
			s.expected++
		}
		if s.rng.Float64() >= s.ackLoss {
			s.eng.ScheduleLaneAfter(laneNet, s.half, gbnAck, int32(s.expected), 0)
		}
	case gbnAck:
		if cum := int(a); cum > s.base {
			s.base = cum
			if s.base >= s.nchunks {
				s.timer.Cancel() // disarm the window-resend backstop
				s.timerArmed = false
				s.done, s.doneAt = true, s.eng.Now()
				return
			}
			s.armTimer()
			s.pump()
		}
	case gbnTimeout:
		s.timerArmed = false
		// go back N: resend everything outstanding
		for i := s.base; i < s.sent; i++ {
			s.link.transmit(gbnTx, int32(i), 0)
		}
		s.armTimer()
	}
}

// --- Erasure coding -------------------------------------------------------

// ecSim event kinds; a carries the global data-chunk index for data
// events and the submessage index for parity events.
const (
	ecDataTx int32 = iota
	ecDataDeliver
	ecParityTx
	ecParityDeliver
	ecRTO
	ecAckSend
	ecAckArrive
)

// ecSim runs the erasure-coded scheme: data and parity chunks are
// injected back to back; the receiver decodes submessages in place and
// positively ACKs when everything is recoverable (§4.1.2), with a
// per-data-chunk SR backstop as fallback.
//
// Recoverability is tracked incrementally in O(1) per delivery:
// missing[sub] and parityOK[sub] counters (plus per-modulo-group loss
// counters for the XOR code) feed a monotone recovered[sub] flag and a
// global remaining-unrecoverable-submessage count, replacing the
// former scan of every submessage — with a fresh group-loss allocation
// per call — on every delivery.
type ecSim struct {
	eng  *simnet.Engine
	rng  *rand.Rand
	link link

	half, rto      float64
	pdrop, ackLoss float64

	nchunks, k, m int
	nsubs         int
	mds           bool

	dataOK    *bitmap.Bitmap // delivered data chunks, global index
	parityOK  []int32        // delivered parity count per submessage
	missing   []int32        // missing data chunks per submessage
	groupLoss []int32        // XOR: per (sub, j mod m) missing count
	need      []int32        // XOR: groups with exactly one loss
	over2     []int32        // XOR: groups with ≥2 losses (unrecoverable)
	recovered []bool
	unrecov   int // submessages not yet recoverable
	rtoTimer  []simnet.Timer

	done   bool
	doneAt float64
}

// realChunks returns the number of data chunks in submessage sub (the
// last submessage may be short).
func (s *ecSim) realChunks(sub int) int {
	real := s.nchunks - sub*s.k
	if real > s.k {
		real = s.k
	}
	return real
}

func (s *ecSim) run(eng *simnet.Engine, cfg Config, rng *rand.Rand, nchunks int) (float64, error) {
	s.eng, s.rng, s.nchunks = eng, rng, nchunks
	s.link = link{eng: eng, tinj: cfg.Ch.ChunkInjectionTime()}
	s.half = cfg.Ch.RTT() / 2
	s.rto = cfg.RTOFactor * cfg.Ch.RTT()
	s.pdrop = cfg.Ch.PDrop
	s.ackLoss = cfg.AckLossProb
	s.k, s.m = cfg.K, cfg.M
	s.mds = cfg.Code == "mds"
	s.nsubs = (nchunks + s.k - 1) / s.k
	s.dataOK = reuseBitmap(s.dataOK, nchunks)
	s.parityOK = reuse(s.parityOK, s.nsubs)
	s.missing = reuse(s.missing, s.nsubs)
	s.recovered = reuse(s.recovered, s.nsubs)
	s.rtoTimer = reuse(s.rtoTimer, nchunks)
	s.unrecov = s.nsubs
	if !s.mds {
		s.groupLoss = reuse(s.groupLoss, s.nsubs*s.m)
		s.need = reuse(s.need, s.nsubs)
		s.over2 = reuse(s.over2, s.nsubs)
	}
	for sub := 0; sub < s.nsubs; sub++ {
		real := s.realChunks(sub)
		s.missing[sub] = int32(real)
		if !s.mds {
			for j := 0; j < real; j++ {
				s.groupLoss[sub*s.m+j%s.m]++
			}
			for g := 0; g < s.m; g++ {
				switch gl := s.groupLoss[sub*s.m+g]; {
				case gl == 1:
					s.need[sub]++
				case gl >= 2:
					s.over2[sub]++
				}
			}
		}
	}
	s.done, s.doneAt = false, 0

	eng.SetHandler(s)
	for sub := 0; sub < s.nsubs; sub++ {
		for j := 0; j < s.realChunks(sub); j++ {
			s.link.transmit(ecDataTx, int32(sub*s.k+j), 0)
		}
		for j := 0; j < s.m; j++ {
			s.link.transmit(ecParityTx, int32(sub), 0)
		}
	}
	if err := drive(eng, &s.done, eventBudget(cfg, nchunks), "ec"); err != nil {
		return 0, err
	}
	if !s.done {
		return math.Inf(1), nil
	}
	return s.doneAt, nil
}

func (s *ecSim) HandleEvent(kind, a, b int32) {
	if s.done {
		return
	}
	switch kind {
	case ecDataTx:
		// (re)arm the SR-fallback backstop for this data chunk
		s.rtoTimer[a].Cancel()
		s.rtoTimer[a] = s.eng.ScheduleLaneAfter(laneRTO, s.rto, ecRTO, a, 0)
		if s.rng.Float64() < s.pdrop {
			return
		}
		s.eng.ScheduleLaneAfter(laneNet, s.half, ecDataDeliver, a, 0)
	case ecDataDeliver:
		if s.dataOK.Set(int(a)) {
			s.rtoTimer[a].Cancel()
			sub := int(a) / s.k
			s.missing[sub]--
			if !s.mds {
				gl := &s.groupLoss[sub*s.m+(int(a)%s.k)%s.m]
				*gl--
				switch *gl {
				case 0:
					s.need[sub]--
				case 1:
					s.over2[sub]--
					s.need[sub]++
				}
			}
			s.checkRecovered(sub)
		}
	case ecParityTx:
		if s.rng.Float64() < s.pdrop {
			return
		}
		s.eng.ScheduleLaneAfter(laneNet, s.half, ecParityDeliver, a, 0)
	case ecParityDeliver:
		s.parityOK[a]++
		s.checkRecovered(int(a))
	case ecRTO:
		if !s.dataOK.Test(int(a)) && !s.recovered[int(a)/s.k] {
			s.link.transmit(ecDataTx, a, 0)
		}
	case ecAckSend:
		s.tryAck()
	case ecAckArrive:
		s.done, s.doneAt = true, s.eng.Now()
	}
}

// checkRecovered re-evaluates submessage sub after a delivery. All
// counter transitions are monotone toward recoverability, so the O(1)
// threshold test here is exact.
//
// For the XOR code, group-level recoverability is approximated by the
// uniform-assignment condition: each parity repairs one loss in its
// modulo group, so every group must have ≤1 loss and enough parity
// must have arrived overall.
func (s *ecSim) checkRecovered(sub int) {
	if s.recovered[sub] {
		return
	}
	if s.mds {
		if s.missing[sub] > s.parityOK[sub] {
			return
		}
	} else if s.over2[sub] != 0 || s.parityOK[sub] < s.need[sub] {
		return
	}
	s.recovered[sub] = true
	// The submessage's losses decode in place: its outstanding SR
	// backstops are dead weight — disarm them instead of letting them
	// drain through the heap.
	lo, hi := sub*s.k, sub*s.k+s.realChunks(sub)
	for c := lo; c < hi; c++ {
		if !s.dataOK.Test(c) {
			s.rtoTimer[c].Cancel()
		}
	}
	s.unrecov--
	if s.unrecov == 0 {
		s.tryAck()
	}
}

// tryAck sends the positive ACK back to the sender. A lost ACK retries
// after an RTO — previously a lost final ACK left the sender waiting
// forever (the run returned the zero-value sentinel).
func (s *ecSim) tryAck() {
	if s.rng.Float64() < s.ackLoss {
		s.eng.ScheduleAfter(s.rto, ecAckSend, 0, 0)
		return
	}
	s.eng.ScheduleAfter(s.half, ecAckArrive, 0, 0)
}
