package experiments

import (
	"runtime"
	"testing"
)

// renderFig runs one figure with an explicit lane count and returns
// the formatted table.
func renderFig(t *testing.T, id string, workers int) string {
	t.Helper()
	opts := quickOpts
	opts.SweepWorkers = workers
	res, err := Run(id, opts)
	if err != nil {
		t.Fatalf("figure %s (workers=%d): %v", id, workers, err)
	}
	return res.Format()
}

// sweepDeterminism asserts the multi-lane guarantee for one figure:
// the parallel sweep is byte-identical to the serial virtual path for
// every worker count, and stays so across GOMAXPROCS ∈ {1, 4, 8}.
func sweepDeterminism(t *testing.T, id string) {
	t.Helper()
	serial := renderFig(t, id, 1)
	for _, workers := range []int{0, 2, 4, 8} {
		if got := renderFig(t, id, workers); got != serial {
			t.Fatalf("%s: workers=%d diverged from serial:\n%s\n---\n%s", id, workers, got, serial)
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		if got := renderFig(t, id, 0); got != serial {
			t.Fatalf("%s: GOMAXPROCS=%d diverged from serial:\n%s\n---\n%s", id, procs, got, serial)
		}
	}
}

func TestWANFunctionalSweepParallelMatchesSerial(t *testing.T) {
	sweepDeterminism(t, "wan-functional")
}

func TestMultiDCSweepParallelMatchesSerial(t *testing.T) {
	sweepDeterminism(t, "multidc-functional")
}

// benchSweep times one figure's reduced sweep at a fixed lane count —
// the serial-vs-parallel pair the README quotes. On a multi-core host
// the parallel variant approaches cells/min(cells, cores) of the
// serial wall-clock; the cells share nothing but the lane pool.
func benchSweep(b *testing.B, id string, workers int) {
	opts := Options{Samples: 100, TailSamples: 100, Seed: 42, DurationSec: 0.1, SweepWorkers: workers}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWANFunctionalSweepSerial(b *testing.B)   { benchSweep(b, "wan-functional", 1) }
func BenchmarkWANFunctionalSweepParallel(b *testing.B) { benchSweep(b, "wan-functional", 0) }
func BenchmarkMultiDCSweepSerial(b *testing.B)         { benchSweep(b, "multidc-functional", 1) }
func BenchmarkMultiDCSweepParallel(b *testing.B)       { benchSweep(b, "multidc-functional", 0) }
func BenchmarkAdaptiveSweepSerial(b *testing.B)        { benchSweep(b, "adaptive-functional", 1) }
func BenchmarkAdaptiveSweepParallel(b *testing.B)      { benchSweep(b, "adaptive-functional", 0) }
