package nicsim

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sdrrdma/internal/clock"
)

// lossyWire drops packets with probability p (seeded) and delivers the
// rest synchronously.
type lossyWire struct {
	dst *Device
	mu  sync.Mutex
	rng *rand.Rand
	p   float64
}

func (w *lossyWire) Send(pkt *Packet) {
	w.mu.Lock()
	drop := w.rng.Float64() < w.p
	w.mu.Unlock()
	if drop {
		return
	}
	// Deliver asynchronously to avoid lock recursion between the two
	// RC endpoints (data triggers ACK triggers completion).
	go w.dst.Deliver(pkt)
}

func rcPair(t *testing.T, mtu int, loss float64, rto time.Duration) (*Device, *Device, *RCQP, *RCQP, *CQ, *CQ) {
	t.Helper()
	devA, devB := NewDevice("a"), NewDevice("b")
	recvCQB := NewCQ(1<<14, false)
	sendCQA := NewCQ(1<<14, false)
	qpA := NewRCQP(devA, nil, mtu, NewCQ(16, false), sendCQA, rto, 4)
	qpB := NewRCQP(devB, nil, mtu, recvCQB, nil, rto, 4)
	qpA.Connect(&lossyWire{dst: devB, rng: rand.New(rand.NewSource(1)), p: loss}, qpB.QPN())
	qpB.Connect(&lossyWire{dst: devA, rng: rand.New(rand.NewSource(2)), p: loss}, qpA.QPN())
	t.Cleanup(func() { qpA.Close(); qpB.Close() })
	return devA, devB, qpA, qpB, recvCQB, sendCQA
}

func waitCQE(t *testing.T, cq *CQ, timeout time.Duration) CQE {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var buf [1]CQE
	for time.Now().Before(deadline) {
		if cq.Poll(buf[:]) == 1 {
			return buf[0]
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("timed out waiting for CQE")
	return CQE{}
}

func TestRCLosslessDelivery(t *testing.T) {
	_, devB, qpA, _, recvCQB, sendCQA := rcPair(t, 8, 0, 50*time.Millisecond)
	buf := make([]byte, 64)
	mr := devB.RegMR(buf)
	payload := []byte("reliable-connection-data")
	qpA.WriteImm(mr.Key(), 0, payload, 9, 123)

	cqe := waitCQE(t, recvCQB, time.Second)
	if cqe.Imm != 9 || cqe.ByteLen != uint32(len(payload)) {
		t.Fatalf("recv CQE wrong: %+v", cqe)
	}
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Fatal("payload corrupted")
	}
	sc := waitCQE(t, sendCQA, time.Second)
	if sc.WRID != 123 {
		t.Fatalf("send completion WRID = %d", sc.WRID)
	}
}

// RC must deliver every message intact, in order, under heavy loss —
// that is the ASIC's contract (§2.2). Go-Back-N retransmission plus
// NAKs recover everything.
func TestRCReliabilityUnderLoss(t *testing.T) {
	_, devB, qpA, qpB, recvCQB, sendCQA := rcPair(t, 8, 0.15, 5*time.Millisecond)
	const msgs = 30
	buf := make([]byte, 32*msgs)
	mr := devB.RegMR(buf)
	want := make([]byte, 0, 32*msgs)
	for i := 0; i < msgs; i++ {
		payload := bytes.Repeat([]byte{byte('A' + i%26)}, 32)
		want = append(want, payload...)
		qpA.WriteImm(mr.Key(), uint64(32*i), payload, uint32(i), uint64(i))
	}
	// Collect all receive + send completions.
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	var tmp [64]CQE
	for got < msgs && time.Now().Before(deadline) {
		got += recvCQB.Poll(tmp[:])
		time.Sleep(time.Millisecond)
	}
	if got != msgs {
		t.Fatalf("received %d/%d messages", got, msgs)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("data corrupted under loss")
	}
	sends := 0
	for sends < msgs && time.Now().Before(deadline) {
		sends += sendCQA.Poll(tmp[:])
		time.Sleep(time.Millisecond)
	}
	if sends != msgs {
		t.Fatalf("send completions %d/%d", sends, msgs)
	}
	if qpA.Retransmits.Load() == 0 {
		t.Fatal("no retransmissions under 15% loss — suspicious")
	}
	_ = qpB
}

func TestRCNakTriggersFastResend(t *testing.T) {
	// Drop exactly the first data packet; the NAK from the PSN gap
	// should trigger resend well before the (long) RTO.
	devA, devB := NewDevice("a"), NewDevice("b")
	recvCQB := NewCQ(64, false)
	qpA := NewRCQP(devA, nil, 8, NewCQ(16, false), nil, 10*time.Second, 1)
	qpB := NewRCQP(devB, nil, 8, recvCQB, nil, 10*time.Second, 1)
	defer qpA.Close()
	defer qpB.Close()

	first := true
	var mu sync.Mutex
	filter := func(p *Packet) bool {
		mu.Lock()
		defer mu.Unlock()
		if first && p.Opcode == OpWriteImm {
			first = false
			return false
		}
		return true
	}
	wAB := &filteredAsyncWire{dst: devB, filter: filter}
	wBA := &filteredAsyncWire{dst: devA}
	qpA.Connect(wAB, qpB.QPN())
	qpB.Connect(wBA, qpA.QPN())

	buf := make([]byte, 32)
	mr := devB.RegMR(buf)
	start := time.Now()
	qpA.WriteImm(mr.Key(), 0, []byte("0123456789abcdef"), 1, 1)
	waitCQE(t, recvCQB, 2*time.Second)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("NAK recovery took %v — fell back to RTO?", elapsed)
	}
	if qpB.NaksSent.Load() == 0 {
		t.Fatal("no NAK sent on PSN gap")
	}
}

type filteredAsyncWire struct {
	dst    *Device
	filter func(*Packet) bool
}

func (w *filteredAsyncWire) Send(pkt *Packet) {
	if w.filter != nil && !w.filter(pkt) {
		return
	}
	go w.dst.Deliver(pkt)
}

// orderedLossyWire delivers in FIFO order on a virtual clock (equal
// latencies fire in schedule order) and drops every Nth data packet
// deterministically — the order-preserving WAN path the windowed
// sender's NAK-storm filter assumes.
type orderedLossyWire struct {
	clk   clock.Clock
	dst   *Device
	lat   time.Duration
	every int
	sends int
	drops int
}

func (w *orderedLossyWire) Send(pkt *Packet) {
	// Single-threaded by construction: every Send happens inside a
	// virtual-clock actor or engine callback.
	if pkt.Opcode == OpWriteImm || pkt.Opcode == OpWrite {
		w.sends++
		if w.every > 0 && w.sends%w.every == 0 {
			w.drops++
			return
		}
	}
	w.clk.AfterFunc(w.lat, func() { w.dst.Deliver(pkt) })
}

// runWindowedRC pushes one size-byte message across the deterministic
// lossy wire with the given outstanding-packet window (0 = legacy
// unlimited) and returns (data sends, retransmits, suppressed NAKs).
func runWindowedRC(t *testing.T, window, size int) (int, uint64, uint64) {
	t.Helper()
	clk := clock.NewVirtual()
	lat := time.Millisecond
	rto := 6 * lat // 3×RTT
	devA, devB := NewDevice("wa"), NewDevice("wb")
	sendCQ := NewCQ(1<<12, true)
	recvCQ := NewCQ(1<<12, true)
	var completed int
	recvCQ.SetSink(func(CQE) {})
	sendCQ.SetSink(func(CQE) { completed++; clk.Notify() })
	qpA := NewRCQP(devA, clk, 4096, NewCQ(16, false), sendCQ, rto, 4)
	qpB := NewRCQP(devB, clk, 4096, recvCQ, nil, rto, 4)
	defer qpA.Close()
	defer qpB.Close()
	qpA.SetSendWindow(window)
	wAB := &orderedLossyWire{clk: clk, dst: devB, lat: lat, every: 37}
	wBA := &orderedLossyWire{clk: clk, dst: devA, lat: lat}
	qpA.Connect(wAB, qpB.QPN())
	qpB.Connect(wBA, qpA.QPN())

	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*7 + i>>9)
	}
	recvBuf := make([]byte, size)
	mr := devB.RegMR(recvBuf)
	clock.Join(clk, func() {
		qpA.WriteImm(mr.Key(), 0, data, 0, 1)
		if window > 0 && wAB.sends != window {
			t.Errorf("window %d: %d packets in flight after post, want exactly the window", window, wAB.sends)
		}
		for completed == 0 {
			epoch := clk.Epoch()
			if completed != 0 {
				break
			}
			clk.WaitNotify(epoch, rto)
		}
	})
	if !bytes.Equal(recvBuf, data) {
		t.Fatal("windowed RC delivered corrupt data")
	}
	return wAB.sends, qpA.Retransmits.Load(), qpA.NaksSuppressed.Load()
}

// The ASIC-mode sender (outstanding window + one Go-Back-N restart
// per loss event) must complete lossy transfers with a bounded packet
// cost, where the legacy fire-hose sender's NAK storm multiplies
// every loss into a full-tail resend cascade.
func TestRCWindowBoundsLossRecovery(t *testing.T) {
	const size = 1 << 20 // 256 packets
	ideal := size / 4096
	sends, retrans, suppressed := runWindowedRC(t, 32, size)
	if retrans == 0 {
		t.Fatal("lossy run had no retransmissions — wire not lossy?")
	}
	if suppressed == 0 {
		t.Fatal("NAK filter never engaged under windowed loss recovery")
	}
	if sends > 6*ideal {
		t.Fatalf("windowed sender injected %d packets for a %d-packet message — storm not contained", sends, ideal)
	}
	legacySends, _, legacySuppressed := runWindowedRC(t, 0, size)
	if legacySuppressed != 0 {
		t.Fatalf("legacy (unwindowed) sender suppressed %d NAKs — filter must stay off", legacySuppressed)
	}
	if legacySends < 2*sends {
		t.Fatalf("legacy sender injected %d vs windowed %d — expected the storm the window prevents", legacySends, sends)
	}
}

// Determinism: the windowed virtual-clock run replays bit-identically.
func TestRCWindowDeterministic(t *testing.T) {
	s1, r1, n1 := runWindowedRC(t, 32, 1<<20)
	s2, r2, n2 := runWindowedRC(t, 32, 1<<20)
	if s1 != s2 || r1 != r2 || n1 != n2 {
		t.Fatalf("windowed RC diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, r1, n1, s2, r2, n2)
	}
}
