package gf256

import "fmt"

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("gf256: non-positive matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows×cols matrix with entry (r,c) = α^(r·c).
// Any k rows of a Vandermonde matrix built this way over distinct
// evaluation points are linearly independent, the property that makes
// the derived code MDS.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(r*c%255))
		}
	}
	return m
}

// Mul returns m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: matrix shape mismatch %dx%d · %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for i := 0; i < m.Cols; i++ {
			a := m.At(r, i)
			if a == 0 {
				continue
			}
			MulAddSlice(a, out.Row(r), other.Row(i))
		}
	}
	return out
}

// SubMatrix returns rows [r0,r1) × cols [c0,c1) as a new matrix.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// Invert returns the inverse of the square matrix m via Gauss–Jordan
// elimination, or an error if m is singular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// find pivot
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gf256: singular matrix (column %d)", col)
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// scale pivot row to 1
		if pv := work.At(col, col); pv != 1 {
			scale := Inv(pv)
			MulSlice(scale, work.Row(col), work.Row(col))
			MulSlice(scale, inv.Row(col), inv.Row(col))
		}
		// eliminate the column everywhere else
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.At(r, col); f != 0 {
				MulAddSlice(f, work.Row(r), work.Row(col))
				MulAddSlice(f, inv.Row(r), inv.Row(col))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}
