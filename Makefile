GO ?= go

# Packages whose concurrent hot paths must stay race-clean.
RACE_PKGS = ./internal/bitmap/ ./internal/gf256/ ./internal/ec/

.PHONY: ci vet build test race bench bench-kernels

ci: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race $(RACE_PKGS)

test:
	$(GO) test ./...

# Kernel micro-benchmarks: gf256 word kernels, EC serial-vs-parallel
# encode, bitmap polling — the hot paths tracked by the bench trajectory.
bench-kernels:
	$(GO) test -run xxx -bench 'BenchmarkXORSlice|BenchmarkMulAddSlice' ./internal/gf256/
	$(GO) test -run xxx -bench 'Encode|Reconstruct' ./internal/ec/
	$(GO) test -run xxx -bench 'BenchmarkBitmap|BenchmarkFirstZero|BenchmarkMarkPacket' ./internal/bitmap/

# Full benchmark sweep including figure regeneration.
bench: bench-kernels
	$(GO) test -run xxx -bench . -benchtime 0.2x .
